type t = {
  line_words : int;
  mutable next : int;
  mutable symbols : (string * int) list; (* reversed *)
  mutable initials : (int * int) list; (* reversed *)
}

let create ?(line_words = 8) () =
  if line_words <= 0 then invalid_arg "Layout.create: line_words must be positive";
  { line_words; next = 0; symbols = []; initials = [] }

let alloc t name words =
  if words <= 0 then invalid_arg (Printf.sprintf "Layout.alloc %s: size %d" name words);
  if List.mem_assoc name t.symbols then
    invalid_arg (Printf.sprintf "Layout.alloc: duplicate symbol %s" name);
  let base = t.next in
  t.next <- t.next + words;
  t.symbols <- (name, base) :: t.symbols;
  base

let round_up v quantum = (v + quantum - 1) / quantum * quantum

let alloc_aligned t name words =
  t.next <- round_up t.next t.line_words;
  let base = alloc t name words in
  t.next <- round_up t.next t.line_words;
  base

let init t addr value =
  if addr < 0 || addr >= t.next then
    invalid_arg (Printf.sprintf "Layout.init: address %d outside allocations" addr);
  t.initials <- (addr, value) :: t.initials

let init_array t base values =
  Array.iteri (fun i v -> init t (base + i) v) values

let size t = t.next
let symbols t = List.rev t.symbols
let initials t = List.rev t.initials
let address_of t name = List.assoc name (symbols t)
