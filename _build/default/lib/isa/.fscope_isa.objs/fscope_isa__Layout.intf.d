lib/isa/layout.mli:
