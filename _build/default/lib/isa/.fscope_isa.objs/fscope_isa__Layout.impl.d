lib/isa/layout.ml: Array List Printf
