lib/isa/fence_kind.mli: Format
