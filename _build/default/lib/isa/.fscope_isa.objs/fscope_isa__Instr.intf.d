lib/isa/instr.mli: Fence_kind Format Reg
