lib/isa/instr.ml: Fence_kind Format List Reg
