lib/isa/fence_kind.ml: Format
