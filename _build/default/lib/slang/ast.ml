type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type lvalue =
  | Global of string
  | Elem of string * expr
  | Field of string * string
  | Field_elem of string * string * expr

and expr =
  | Int of int
  | Tid
  | Local of string
  | Read of lvalue
  | Binop of binop * expr * expr
  | Not of expr

type fence_spec =
  | F_full
  | F_class
  | F_set of string list

type fence_flavor =
  | FF_full
  | FF_store_store
  | FF_load_load
  | FF_store_load

type call = {
  instance : string option;
  meth : string;
  args : expr list;
}

type stmt =
  | Let of string * expr
  | Assign of string * expr
  | Store of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | Fence of fence_spec * fence_flavor
  | Cas of { dst : string; lv : lvalue; expected : expr; desired : expr }
  | Call_stmt of call
  | Call_assign of string * call
  | Return of expr option
  | Inlined of inlined

and inlined = {
  cid : int option;
  result : string option;
  body : block;
}

and block = stmt list

type meth = {
  mname : string;
  params : string list;
  returns : bool;
  body : block;
}

type class_decl = {
  cname : string;
  scalars : (string * int) list;
  arrays : (string * int * int array option) list;
  methods : meth list;
}

type instance_decl = {
  iname : string;
  cls : string;
}

type global_decl =
  | G_scalar of string * int
  | G_array of string * int * int array option

type program = {
  classes : class_decl list;
  instances : instance_decl list;
  globals : global_decl list;
  threads : block list;
}

let field_symbol instance field = instance ^ "." ^ field

let rec iter_lvalues_expr f = function
  | Int _ | Tid | Local _ -> ()
  | Read lv ->
    f lv;
    iter_lvalues_lv f lv
  | Binop (_, a, b) ->
    iter_lvalues_expr f a;
    iter_lvalues_expr f b
  | Not e -> iter_lvalues_expr f e

and iter_lvalues_lv f = function
  | Global _ | Field _ -> ()
  | Elem (_, e) | Field_elem (_, _, e) -> iter_lvalues_expr f e

let rec iter_stmt_deep f block =
  List.iter
    (fun stmt ->
      f stmt;
      match stmt with
      | If (_, a, b) ->
        iter_stmt_deep f a;
        iter_stmt_deep f b
      | While (_, body) -> iter_stmt_deep f body
      | Inlined { body; _ } -> iter_stmt_deep f body
      | Let _ | Assign _ | Store _ | Fence _ | Cas _ | Call_stmt _ | Call_assign _
      | Return _ ->
        ())
    block
