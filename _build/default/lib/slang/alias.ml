module String_set = Set.Make (String)

let set_variables (p : Ast.program) =
  let acc = ref String_set.empty in
  let scan_block block =
    Ast.iter_stmt_deep
      (fun stmt ->
        match stmt with
        | Ast.Fence (Ast.F_set vars, _) -> List.iter (fun v -> acc := String_set.add v !acc) vars
        | Ast.Fence ((Ast.F_full | Ast.F_class), _)
        | Ast.Let _ | Ast.Assign _ | Ast.Store _ | Ast.If _ | Ast.While _ | Ast.Cas _
        | Ast.Call_stmt _ | Ast.Call_assign _ | Ast.Return _ | Ast.Inlined _ ->
          ())
      block
  in
  List.iter scan_block p.Ast.threads;
  List.iter
    (fun (c : Ast.class_decl) -> List.iter (fun (m : Ast.meth) -> scan_block m.body) c.methods)
    p.Ast.classes;
  String_set.elements !acc

let symbol_of_lvalue = function
  | Ast.Global name | Ast.Elem (name, _) -> name
  | Ast.Field (instance, field) | Ast.Field_elem (instance, field, _) ->
    Ast.field_symbol instance field

let shared_symbols (p : Ast.program) =
  let reads = Hashtbl.create 64 (* symbol -> thread id set *)
  and writes = Hashtbl.create 64 in
  let note table sym tid =
    let cur = Option.value ~default:String_set.empty (Hashtbl.find_opt table sym) in
    Hashtbl.replace table sym (String_set.add (string_of_int tid) cur)
  in
  let scan_expr tid e = Ast.iter_lvalues_expr (fun lv -> note reads (symbol_of_lvalue lv) tid) e in
  List.iteri
    (fun tid thread ->
      Ast.iter_stmt_deep
        (fun stmt ->
          match stmt with
          | Ast.Let (_, e) | Ast.Assign (_, e) -> scan_expr tid e
          | Ast.Store (lv, e) ->
            note writes (symbol_of_lvalue lv) tid;
            (match lv with
            | Ast.Elem (_, idx) | Ast.Field_elem (_, _, idx) -> scan_expr tid idx
            | Ast.Global _ | Ast.Field _ -> ());
            scan_expr tid e
          | Ast.If (cond, _, _) | Ast.While (cond, _) -> scan_expr tid cond
          | Ast.Cas { lv; expected; desired; _ } ->
            note writes (symbol_of_lvalue lv) tid;
            note reads (symbol_of_lvalue lv) tid;
            (match lv with
            | Ast.Elem (_, idx) | Ast.Field_elem (_, _, idx) -> scan_expr tid idx
            | Ast.Global _ | Ast.Field _ -> ());
            scan_expr tid expected;
            scan_expr tid desired
          | Ast.Return (Some e) -> scan_expr tid e
          | Ast.Return None | Ast.Fence _ | Ast.Inlined _ -> ()
          | Ast.Call_stmt call | Ast.Call_assign (_, call) ->
            (* Calls should be gone after inlining; attribute argument
               reads anyway for robustness. *)
            List.iter (scan_expr tid) call.Ast.args)
        thread)
    p.Ast.threads;
  let accessors sym =
    let get table =
      Option.value ~default:String_set.empty (Hashtbl.find_opt table sym)
    in
    String_set.union (get reads) (get writes)
  in
  let all_syms =
    String_set.union
      (String_set.of_seq (Seq.map fst (Hashtbl.to_seq reads)))
      (String_set.of_seq (Seq.map fst (Hashtbl.to_seq writes)))
  in
  String_set.elements
    (String_set.filter
       (fun sym ->
         Hashtbl.mem writes sym && String_set.cardinal (accessors sym) >= 2)
       all_syms)
