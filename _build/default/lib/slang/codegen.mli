(** Code generation: inlined slang threads to the simulator ISA.

    Register conventions: r0 is the hardwired zero, r1-r7 an
    expression evaluation stack, r8-r30 the local-variable pool
    (scoped per block, freed on block exit), r31 scratch.  A thread
    whose live locals exceed the pool fails to compile with a clear
    error rather than spilling — locals spilling to memory would
    pollute the very fence-scope experiments this compiler exists to
    drive.

    Class-scope support: {!Ast.Inlined} regions carrying a [cid] are
    bracketed with [fs_start]/[fs_end]; [Return] compiles to a jump to
    the region's exit label (placed *before* the [fs_end], so every
    path closes the scope).  Set-scope support: accesses whose base
    symbol is in [flagged] get the per-instruction set-scope flag. *)

exception Error of string

val compile_thread :
  layout:Fscope_isa.Layout.t ->
  flagged:(string -> bool) ->
  Ast.block ->
  Fscope_isa.Instr.t array
(** Compile one fully inlined thread body.  The block must not contain
    [Call_stmt]/[Call_assign] (run {!Inline} first); raises [Error]
    otherwise, on register-pool exhaustion, or on expression depth
    overflow. *)
