module String_map = Map.Make (String)

(* Does a block contain a class-scoped fence (not descending into
   calls: each class is judged on its own methods)? *)
let block_has_class_fence block =
  let found = ref false in
  Ast.iter_stmt_deep
    (fun stmt ->
      match stmt with
      | Ast.Fence (Ast.F_class, _) -> found := true
      | Ast.Let _ | Ast.Assign _ | Ast.Store _ | Ast.If _ | Ast.While _
      | Ast.Fence ((Ast.F_full | Ast.F_set _), _)
      | Ast.Cas _ | Ast.Call_stmt _ | Ast.Call_assign _ | Ast.Return _ | Ast.Inlined _
        ->
        ())
    block;
  !found

let assign_cids (p : Ast.program) =
  let next = ref 0 in
  List.filter_map
    (fun (c : Ast.class_decl) ->
      if List.exists (fun (m : Ast.meth) -> block_has_class_fence m.body) c.methods
      then begin
        incr next;
        Some (c.cname, !next)
      end
      else None)
    p.Ast.classes

type ctx = {
  program : Ast.program;
  cids : (string * int) list;
  mutable next_site : int;
}

let class_by_name ctx name =
  List.find (fun (c : Ast.class_decl) -> c.cname = name) ctx.program.Ast.classes

let instance_class ctx name =
  let i = List.find (fun (i : Ast.instance_decl) -> i.iname = name) ctx.program.Ast.instances in
  class_by_name ctx i.cls

(* Collect every Let-bound local in a block (deep). *)
let bound_locals block =
  let acc = ref [] in
  Ast.iter_stmt_deep
    (fun stmt ->
      match stmt with
      | Ast.Let (name, _) -> acc := name :: !acc
      | Ast.Assign _ | Ast.Store _ | Ast.If _ | Ast.While _ | Ast.Fence _ | Ast.Cas _
      | Ast.Call_stmt _ | Ast.Call_assign _ | Ast.Return _ | Ast.Inlined _ ->
        ())
    block;
  !acc

let rename_of site names =
  List.fold_left
    (fun m name -> String_map.add name (Printf.sprintf "%%%d:%s" site name) m)
    String_map.empty names

let apply_rename rename name =
  match String_map.find_opt name rename with
  | Some fresh -> fresh
  | None -> name

(* Substitute local renamings and the callee's "self" instance. *)
let rec subst_expr ~rename ~self e =
  match e with
  | Ast.Int _ | Ast.Tid -> e
  | Ast.Local name -> Ast.Local (apply_rename rename name)
  | Ast.Read lv -> Ast.Read (subst_lvalue ~rename ~self lv)
  | Ast.Binop (op, a, b) ->
    Ast.Binop (op, subst_expr ~rename ~self a, subst_expr ~rename ~self b)
  | Ast.Not e -> Ast.Not (subst_expr ~rename ~self e)

and subst_lvalue ~rename ~self lv =
  let inst name = if name = "self" then self name else name in
  match lv with
  | Ast.Global _ -> lv
  | Ast.Elem (name, idx) -> Ast.Elem (name, subst_expr ~rename ~self idx)
  | Ast.Field (instance, field) -> Ast.Field (inst instance, field)
  | Ast.Field_elem (instance, field, idx) ->
    Ast.Field_elem (inst instance, field, subst_expr ~rename ~self idx)

and self_err _ = invalid_arg "Inline: 'self' escaped a method context"

(* Inline every call in a block.  [rename] renames the block's locals;
   [self] resolves the instance name "self". *)
let rec inline_block ctx ~rename ~self block =
  List.concat_map (inline_stmt ctx ~rename ~self) block

and inline_stmt ctx ~rename ~self stmt =
  let e = subst_expr ~rename ~self in
  let lv = subst_lvalue ~rename ~self in
  match stmt with
  | Ast.Let (name, ex) -> [ Ast.Let (apply_rename rename name, e ex) ]
  | Ast.Assign (name, ex) -> [ Ast.Assign (apply_rename rename name, e ex) ]
  | Ast.Store (l, ex) -> [ Ast.Store (lv l, e ex) ]
  | Ast.If (cond, then_b, else_b) ->
    [
      Ast.If
        (e cond, inline_block ctx ~rename ~self then_b, inline_block ctx ~rename ~self else_b);
    ]
  | Ast.While (cond, body) -> [ Ast.While (e cond, inline_block ctx ~rename ~self body) ]
  | Ast.Fence (spec, flavor) -> [ Ast.Fence (spec, flavor) ]
  | Ast.Cas { dst; lv = l; expected; desired } ->
    [
      Ast.Cas
        {
          dst = apply_rename rename dst;
          lv = lv l;
          expected = e expected;
          desired = e desired;
        };
    ]
  | Ast.Return ex -> [ Ast.Return (Option.map e ex) ]
  | Ast.Call_stmt call -> [ inline_call ctx ~rename ~self ~result:None call ]
  | Ast.Call_assign (dst, call) ->
    [ inline_call ctx ~rename ~self ~result:(Some (apply_rename rename dst)) call ]
  | Ast.Inlined _ -> invalid_arg "Inline: program already contains Inlined nodes"

and inline_call ctx ~rename ~self ~result (call : Ast.call) =
  let instance_name =
    let raw = Option.get call.Ast.instance in
    if raw = "self" then self raw else raw
  in
  let cls = instance_class ctx instance_name in
  let meth =
    List.find (fun (m : Ast.meth) -> m.mname = call.Ast.meth) cls.Ast.methods
  in
  let site = ctx.next_site in
  ctx.next_site <- ctx.next_site + 1;
  let callee_rename = rename_of site (meth.params @ bound_locals meth.body) in
  (* Bind arguments (evaluated in the caller's naming context). *)
  let param_lets =
    List.map2
      (fun param arg ->
        Ast.Let (apply_rename callee_rename param, subst_expr ~rename ~self arg))
      meth.params call.Ast.args
  in
  let callee_self _ = instance_name in
  let body = inline_block ctx ~rename:callee_rename ~self:callee_self meth.body in
  Ast.Inlined
    {
      cid = List.assoc_opt cls.Ast.cname ctx.cids;
      result;
      body = param_lets @ body;
    }

let run (p : Ast.program) =
  let cids = assign_cids p in
  let ctx = { program = p; cids; next_site = 0 } in
  let threads =
    List.map
      (fun thread -> inline_block ctx ~rename:String_map.empty ~self:self_err thread)
      p.Ast.threads
  in
  ({ p with Ast.threads }, cids)
