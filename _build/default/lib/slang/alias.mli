(** Set-scope flagging support and a conservative sharing analysis.

    Set scope needs the compiler to "analyze the program to identify
    the memory accesses to the specified variables" (§V-B).  Our
    object language has no pointers, so by-symbol resolution is an
    exact alias analysis: an access belongs to the set iff its base
    symbol (global name, or ["instance.field"]) is listed.

    [shared_symbols] approximates the delay-set-analysis input the
    paper uses for barnes/radiosity (§VI-B): symbols accessed by more
    than one thread, at least one of them writing.  Accesses to
    everything else are thread-private or read-only shared and need
    not be ordered to preserve SC — exactly the paper's argument for
    why set-scoped SC enforcement wins. *)

val set_variables : Ast.program -> string list
(** Union of every [S-FENCE\[set, ...\]] variable list in the program,
    deduplicated and sorted. *)

val shared_symbols : Ast.program -> string list
(** Symbols (globals and instance fields) that are conflict-shared:
    accessed by two or more threads with at least one writer.  Works
    on the inlined program (method bodies reached through calls are
    attributed to the calling thread), so run it after {!Inline}. *)
