lib/slang/compile.mli: Ast Fscope_isa
