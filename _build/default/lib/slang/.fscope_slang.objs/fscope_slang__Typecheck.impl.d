lib/slang/typecheck.ml: Array Ast Hashtbl List Map Option Printf Set String
