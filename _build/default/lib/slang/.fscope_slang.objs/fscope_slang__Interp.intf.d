lib/slang/interp.mli: Ast Fscope_isa
