lib/slang/inline.mli: Ast
