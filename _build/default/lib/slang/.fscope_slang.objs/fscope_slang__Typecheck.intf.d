lib/slang/typecheck.mli: Ast
