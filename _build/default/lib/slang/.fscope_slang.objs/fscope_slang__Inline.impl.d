lib/slang/inline.ml: Ast List Map Option Printf String
