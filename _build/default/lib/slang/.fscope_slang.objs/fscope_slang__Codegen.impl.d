lib/slang/codegen.ml: Ast Fscope_isa List Printf
