lib/slang/alias.ml: Ast Hashtbl List Option Seq Set String
