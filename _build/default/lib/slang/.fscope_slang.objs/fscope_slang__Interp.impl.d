lib/slang/interp.ml: Array Ast Fscope_isa List Map Option Printf String
