lib/slang/ast.ml: List
