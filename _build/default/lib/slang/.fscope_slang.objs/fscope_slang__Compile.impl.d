lib/slang/compile.ml: Alias Ast Codegen Fscope_isa Inline List Typecheck
