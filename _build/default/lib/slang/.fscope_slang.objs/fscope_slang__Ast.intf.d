lib/slang/ast.mli:
