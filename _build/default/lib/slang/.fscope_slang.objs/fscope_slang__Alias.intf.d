lib/slang/alias.mli: Ast
