lib/slang/codegen.mli: Ast Fscope_isa
