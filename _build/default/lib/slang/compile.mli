(** The compiler driver: typecheck, inline, flag, lay out data, emit.

    Data layout: every global and instance field gets its own
    cache-line-aligned allocation (scalars are padded to a full line).
    This mirrors how production lock-free code pads its contended
    fields, and makes the coherence behaviour of each variable
    independent — which the experiments rely on. *)

type info = {
  cids : (string * int) list;
      (** class name -> cid for classes holding class-scoped fences *)
  flagged_symbols : string list;  (** symbols whose accesses carry the set-scope flag *)
  layout : Fscope_isa.Layout.t;
}

val compile : ?extra_mem:int -> Ast.program -> Fscope_isa.Program.t * info
(** [compile p] runs the full pipeline.  [extra_mem] reserves
    additional unnamed words at the end of the data segment (default
    0).  Raises {!Typecheck.Error} or {!Codegen.Error} on bad input. *)

val compile_program : ?extra_mem:int -> Ast.program -> Fscope_isa.Program.t
(** [compile] without the info. *)
