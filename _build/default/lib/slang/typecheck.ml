exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module String_set = Set.Make (String)
module String_map = Map.Make (String)

type env = {
  program : Ast.program;
  globals_scalar : String_set.t;
  globals_array : String_set.t;
  classes : Ast.class_decl String_map.t;
  instances : Ast.instance_decl String_map.t;
}

let build_env (p : Ast.program) =
  let add_unique what set name =
    if String_set.mem name set then err "duplicate %s %s" what name
    else String_set.add name set
  in
  let globals_scalar, globals_array =
    List.fold_left
      (fun (s, a) -> function
        | Ast.G_scalar (name, _) -> (add_unique "global" s name, a)
        | Ast.G_array (name, size, init) ->
          if size <= 0 then err "global array %s has size %d" name size;
          (match init with
          | Some values when Array.length values > size ->
            err "global array %s: initializer longer than %d" name size
          | Some _ | None -> ());
          if String_set.mem name s then err "duplicate global %s" name;
          (s, add_unique "global" a name))
      (String_set.empty, String_set.empty)
      p.Ast.globals
  in
  let classes =
    List.fold_left
      (fun m (c : Ast.class_decl) ->
        if String_map.mem c.cname m then err "duplicate class %s" c.cname;
        let field_names =
          List.map fst c.scalars @ List.map (fun (n, _, _) -> n) c.arrays
        in
        let dedup = List.sort_uniq String.compare field_names in
        if List.length dedup <> List.length field_names then
          err "class %s has duplicate field names" c.cname;
        let meth_names = List.map (fun (m : Ast.meth) -> m.mname) c.methods in
        let dedup_m = List.sort_uniq String.compare meth_names in
        if List.length dedup_m <> List.length meth_names then
          err "class %s has duplicate method names" c.cname;
        String_map.add c.cname c m)
      String_map.empty p.Ast.classes
  in
  let instances =
    List.fold_left
      (fun m (i : Ast.instance_decl) ->
        if String_map.mem i.iname m then err "duplicate instance %s" i.iname;
        if i.iname = "self" then err "instance may not be named 'self'";
        if not (String_map.mem i.cls classes) then
          err "instance %s of unknown class %s" i.iname i.cls;
        String_map.add i.iname i m)
      String_map.empty p.Ast.instances
  in
  { program = p; globals_scalar; globals_array; classes; instances }

(* The class an instance name denotes, in a context where "self" means
   [self_class]. *)
let class_of_instance env ~self_class name =
  if name = "self" then (
    match self_class with
    | Some c -> c
    | None -> err "'self' used outside a method")
  else
    match String_map.find_opt name env.instances with
    | Some i -> String_map.find i.cls env.classes
    | None -> err "unknown instance %s" name

let check_field env ~self_class ~want_array instance field =
  let c = class_of_instance env ~self_class instance in
  let is_scalar = List.mem_assoc field c.scalars in
  let is_array = List.exists (fun (n, _, _) -> n = field) c.arrays in
  if (not is_scalar) && not is_array then
    err "class %s has no field %s" c.cname field;
  if want_array && not is_array then err "field %s.%s is not an array" instance field;
  if (not want_array) && not is_scalar then err "field %s.%s is an array" instance field

let rec check_lvalue env ~self_class ~locals lv =
  match lv with
  | Ast.Global name ->
    if not (String_set.mem name env.globals_scalar) then
      if String_set.mem name env.globals_array then
        err "global %s is an array; use an element access" name
      else err "unknown global %s" name
  | Ast.Elem (name, idx) ->
    if not (String_set.mem name env.globals_array) then
      err "unknown global array %s" name;
    check_expr env ~self_class ~locals idx
  | Ast.Field (instance, field) ->
    check_field env ~self_class ~want_array:false instance field
  | Ast.Field_elem (instance, field, idx) ->
    check_field env ~self_class ~want_array:true instance field;
    check_expr env ~self_class ~locals idx

and check_expr env ~self_class ~locals e =
  match e with
  | Ast.Int _ | Ast.Tid -> ()
  | Ast.Local name ->
    if not (String_set.mem name locals) then err "local %s used before declaration" name
  | Ast.Read lv -> check_lvalue env ~self_class ~locals lv
  | Ast.Binop (_, a, b) ->
    check_expr env ~self_class ~locals a;
    check_expr env ~self_class ~locals b
  | Ast.Not e -> check_expr env ~self_class ~locals e

let check_set_vars env vars =
  if vars = [] then err "S-FENCE[set] with an empty variable list";
  List.iter
    (fun v ->
      match String.index_opt v '.' with
      | None ->
        if
          (not (String_set.mem v env.globals_scalar))
          && not (String_set.mem v env.globals_array)
        then err "S-FENCE[set]: unknown global %s" v
      | Some i ->
        let instance = String.sub v 0 i in
        let field = String.sub v (i + 1) (String.length v - i - 1) in
        let c = class_of_instance env ~self_class:None instance in
        if
          (not (List.mem_assoc field c.scalars))
          && not (List.exists (fun (n, _, _) -> n = field) c.arrays)
        then err "S-FENCE[set]: class %s has no field %s" c.cname field)
    vars

let check_call env ~self_class ~locals (call : Ast.call) =
  let instance =
    match call.instance with
    | Some i -> i
    | None -> err "calls must name an instance"
  in
  let c = class_of_instance env ~self_class instance in
  let meth =
    match List.find_opt (fun (m : Ast.meth) -> m.mname = call.meth) c.methods with
    | Some m -> m
    | None -> err "class %s has no method %s" c.cname call.meth
  in
  if List.length call.args <> List.length meth.params then
    err "%s.%s expects %d arguments, got %d" c.cname call.meth
      (List.length meth.params) (List.length call.args);
  List.iter (check_expr env ~self_class ~locals) call.args;
  meth

(* Returns the set of locals in scope after the block. *)
let rec check_block env ~self_class ~in_method ~returns ~locals block =
  List.fold_left
    (fun locals stmt ->
      match stmt with
      | Ast.Let (name, e) ->
        if String_set.mem name locals then err "local %s declared twice" name;
        check_expr env ~self_class ~locals e;
        String_set.add name locals
      | Ast.Assign (name, e) ->
        if not (String_set.mem name locals) then
          err "assignment to undeclared local %s" name;
        check_expr env ~self_class ~locals e;
        locals
      | Ast.Store (lv, e) ->
        check_lvalue env ~self_class ~locals lv;
        check_expr env ~self_class ~locals e;
        locals
      | Ast.If (cond, then_b, else_b) ->
        check_expr env ~self_class ~locals cond;
        ignore (check_block env ~self_class ~in_method ~returns ~locals then_b);
        ignore (check_block env ~self_class ~in_method ~returns ~locals else_b);
        locals
      | Ast.While (cond, body) ->
        check_expr env ~self_class ~locals cond;
        ignore (check_block env ~self_class ~in_method ~returns ~locals body);
        locals
      | Ast.Fence ((Ast.F_full | Ast.F_class), _) -> locals
      | Ast.Fence (Ast.F_set vars, _) ->
        check_set_vars env vars;
        locals
      | Ast.Cas { dst; lv; expected; desired } ->
        if not (String_set.mem dst locals) then err "CAS result local %s undeclared" dst;
        check_lvalue env ~self_class ~locals lv;
        check_expr env ~self_class ~locals expected;
        check_expr env ~self_class ~locals desired;
        locals
      | Ast.Call_stmt call ->
        ignore (check_call env ~self_class ~locals call);
        locals
      | Ast.Call_assign (dst, call) ->
        if not (String_set.mem dst locals) then err "call result local %s undeclared" dst;
        let meth = check_call env ~self_class ~locals call in
        if not meth.returns then
          err "method %s does not return a value" call.Ast.meth;
        locals
      | Ast.Return e ->
        if not in_method then err "Return outside a method";
        (match (e, returns) with
        | Some e, true ->
          check_expr env ~self_class ~locals e;
          locals
        | None, false -> locals
        | Some _, false -> err "Return with a value in a non-returning method"
        | None, true -> err "Return without a value in a returning method")
      | Ast.Inlined _ -> err "Inlined nodes may not appear in source programs")
    locals block

(* Call-graph acyclicity: calls are resolved per (class, method). *)
let check_no_recursion env =
  let key cname mname = cname ^ "#" ^ mname in
  let visiting = Hashtbl.create 16 in
  let finished = Hashtbl.create 16 in
  let rec visit (c : Ast.class_decl) (m : Ast.meth) =
    let k = key c.cname m.mname in
    if Hashtbl.mem finished k then ()
    else if Hashtbl.mem visiting k then err "recursive call involving %s.%s" c.cname m.mname
    else begin
      Hashtbl.add visiting k ();
      Ast.iter_stmt_deep
        (fun stmt ->
          let call =
            match stmt with
            | Ast.Call_stmt call | Ast.Call_assign (_, call) -> Some call
            | Ast.Let _ | Ast.Assign _ | Ast.Store _ | Ast.If _ | Ast.While _
            | Ast.Fence _ | Ast.Cas _ | Ast.Return _ | Ast.Inlined _ ->
              None
          in
          match call with
          | None -> ()
          | Some call ->
            let callee_class =
              class_of_instance env ~self_class:(Some c) (Option.get call.instance)
            in
            let callee =
              List.find
                (fun (m : Ast.meth) -> m.mname = call.Ast.meth)
                callee_class.methods
            in
            visit callee_class callee)
        m.body;
      Hashtbl.remove visiting k;
      Hashtbl.add finished k ()
    end
  in
  List.iter
    (fun (c : Ast.class_decl) -> List.iter (fun m -> visit c m) c.methods)
    env.program.Ast.classes

let check (p : Ast.program) =
  if p.Ast.threads = [] then err "program has no threads";
  let env = build_env p in
  (* Method bodies. *)
  List.iter
    (fun (c : Ast.class_decl) ->
      List.iter
        (fun (m : Ast.meth) ->
          let params = String_set.of_list m.params in
          if String_set.cardinal params <> List.length m.params then
            err "%s.%s has duplicate parameters" c.cname m.mname;
          ignore
            (check_block env ~self_class:(Some c) ~in_method:true ~returns:m.returns
               ~locals:params m.body))
        c.methods)
    p.Ast.classes;
  check_no_recursion env;
  (* Thread bodies. *)
  List.iter
    (fun thread ->
      ignore
        (check_block env ~self_class:None ~in_method:false ~returns:false
           ~locals:String_set.empty thread))
    p.Ast.threads
