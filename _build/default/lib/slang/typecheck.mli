(** Static checks for slang programs.

    Verifies name resolution (globals, instances, fields, methods,
    locals-before-use), call-graph acyclicity (inlining requires no
    recursion), arity of calls, return discipline, and set-fence
    variable lists.  Inside method bodies, fields and methods of the
    enclosing class are addressed through the distinguished instance
    name ["self"]. *)

exception Error of string

val check : Ast.program -> unit
(** Raises [Error] with a descriptive message on the first problem. *)
