module Instr = Fscope_isa.Instr
module Reg = Fscope_isa.Reg
module Asm = Fscope_isa.Asm
module Layout = Fscope_isa.Layout

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let expr_base = 1
let expr_depth_max = 7 (* r1..r7 *)
let locals_first = 8
let locals_last = 30

type region = {
  exit_label : Asm.label;
  result : string option;
}

type state = {
  asm : Asm.t;
  layout : Layout.t;
  flagged : string -> bool;
  mutable locals : (string * Reg.t) list;
  mutable free_regs : Reg.t list;
  mutable regions : region list; (* innermost first *)
}

let create_state ~layout ~flagged =
  {
    asm = Asm.create ();
    layout;
    flagged;
    locals = [];
    free_regs = List.init (locals_last - locals_first + 1) (fun i -> Reg.r (locals_first + i));
    regions = [];
  }

let expr_reg depth =
  if depth >= expr_depth_max then
    err "expression too deep: needs more than %d temporaries" expr_depth_max;
  Reg.r (expr_base + depth)

let local_reg st name =
  match List.assoc_opt name st.locals with
  | Some reg -> reg
  | None -> err "codegen: local %s has no register (declaration not seen)" name

let alloc_local st name =
  if List.mem_assoc name st.locals then
    err "codegen: local %s allocated twice in one scope chain" name;
  match st.free_regs with
  | [] -> err "register pool exhausted at local %s (max %d live locals)" name
            (locals_last - locals_first + 1)
  | reg :: rest ->
    st.free_regs <- rest;
    st.locals <- (name, reg) :: st.locals;
    reg

let free_locals st down_to =
  (* st.locals is a stack; release everything allocated above the mark. *)
  let rec go locals =
    if List.length locals > down_to then
      match locals with
      | (_, reg) :: rest ->
        st.free_regs <- reg :: st.free_regs;
        go rest
      | [] -> assert false
    else locals
  in
  st.locals <- go st.locals

let symbol_addr st name =
  match Layout.address_of st.layout name with
  | addr -> addr
  | exception Not_found -> err "codegen: unknown symbol %s" name

let move st ~dst ~src =
  if not (Reg.equal dst src) then
    Asm.emit st.asm (Instr.Alu (Instr.Add, dst, src, Instr.Imm 0))

let binop_alu = function
  | Ast.Add -> (Instr.Add, false)
  | Ast.Sub -> (Instr.Sub, false)
  | Ast.Mul -> (Instr.Mul, false)
  | Ast.Div -> (Instr.Div, false)
  | Ast.Rem -> (Instr.Rem, false)
  | Ast.Band -> (Instr.And, false)
  | Ast.Bor -> (Instr.Or, false)
  | Ast.Bxor -> (Instr.Xor, false)
  | Ast.Shl -> (Instr.Shl, false)
  | Ast.Shr -> (Instr.Shr, false)
  | Ast.Lt -> (Instr.Slt, false)
  | Ast.Le -> (Instr.Sle, false)
  | Ast.Gt -> (Instr.Slt, true) (* a > b  <=>  b < a *)
  | Ast.Ge -> (Instr.Sle, true)
  | Ast.Eq -> (Instr.Seq, false)
  | Ast.Ne -> (Instr.Sne, false)

(* Compile an expression into the stack register at [depth]; returns
   that register. *)
let rec compile_expr st depth e =
  let dst = expr_reg depth in
  (match e with
  | Ast.Int v -> Asm.emit st.asm (Instr.Li (dst, v))
  | Ast.Tid -> Asm.emit st.asm (Instr.Tid dst)
  | Ast.Local name -> move st ~dst ~src:(local_reg st name)
  | Ast.Read lv ->
    let base, off, flagged = compile_address st depth lv in
    Asm.emit st.asm (Instr.Load { dst; base; off; flagged })
  | Ast.Binop (op, a, b) ->
    let ra = compile_expr st depth a in
    let rb = compile_expr st (depth + 1) b in
    let alu, swapped = binop_alu op in
    if swapped then Asm.emit st.asm (Instr.Alu (alu, dst, rb, Instr.Reg ra))
    else Asm.emit st.asm (Instr.Alu (alu, dst, ra, Instr.Reg rb))
  | Ast.Not e ->
    let r = compile_expr st depth e in
    Asm.emit st.asm (Instr.Alu (Instr.Seq, dst, r, Instr.Imm 0)));
  dst

(* Resolve an lvalue to (base register, immediate offset, flagged).
   Index expressions are evaluated at [depth]. *)
and compile_address st depth lv =
  let flagged sym = st.flagged sym in
  match lv with
  | Ast.Global name -> (Reg.zero, symbol_addr st name, flagged name)
  | Ast.Field (instance, field) ->
    let sym = Ast.field_symbol instance field in
    (Reg.zero, symbol_addr st sym, flagged sym)
  | Ast.Elem (name, idx) ->
    let r = compile_expr st depth idx in
    (r, symbol_addr st name, flagged name)
  | Ast.Field_elem (instance, field, idx) ->
    let sym = Ast.field_symbol instance field in
    let r = compile_expr st depth idx in
    (r, symbol_addr st sym, flagged sym)

let fence_instr spec flavor =
  let base =
    match spec with
    | Ast.F_full -> Fscope_isa.Fence_kind.full
    | Ast.F_class -> Fscope_isa.Fence_kind.class_scoped
    | Ast.F_set _ -> Fscope_isa.Fence_kind.set_scoped
  in
  let kind =
    match flavor with
    | Ast.FF_full -> base
    | Ast.FF_store_store -> Fscope_isa.Fence_kind.store_store base
    | Ast.FF_load_load -> Fscope_isa.Fence_kind.load_load base
    | Ast.FF_store_load -> Fscope_isa.Fence_kind.store_load base
  in
  Instr.Fence kind

let rec compile_block st block =
  let mark = List.length st.locals in
  List.iter (compile_stmt st) block;
  free_locals st mark

and compile_stmt st stmt =
  match stmt with
  | Ast.Let (name, e) ->
    let src = compile_expr st 0 e in
    let reg = alloc_local st name in
    move st ~dst:reg ~src
  | Ast.Assign (name, e) ->
    let src = compile_expr st 0 e in
    move st ~dst:(local_reg st name) ~src
  | Ast.Store (lv, e) ->
    let src = compile_expr st 0 e in
    let base, off, flagged = compile_address st 1 lv in
    Asm.emit st.asm (Instr.Store { src; base; off; flagged })
  | Ast.If (cond, then_b, else_b) ->
    let r = compile_expr st 0 cond in
    let l_else = Asm.fresh_label st.asm in
    let l_end = Asm.fresh_label st.asm in
    Asm.branch st.asm Instr.Eqz r l_else;
    compile_block st then_b;
    if else_b <> [] then begin
      Asm.jump st.asm l_end;
      Asm.place st.asm l_else;
      compile_block st else_b;
      Asm.place st.asm l_end
    end
    else begin
      Asm.place st.asm l_else;
      Asm.place st.asm l_end
    end
  | Ast.While (cond, body) ->
    let l_top = Asm.fresh_label st.asm in
    let l_end = Asm.fresh_label st.asm in
    Asm.place st.asm l_top;
    let r = compile_expr st 0 cond in
    Asm.branch st.asm Instr.Eqz r l_end;
    compile_block st body;
    Asm.jump st.asm l_top;
    Asm.place st.asm l_end
  | Ast.Fence (spec, flavor) -> Asm.emit st.asm (fence_instr spec flavor)
  | Ast.Cas { dst; lv; expected; desired } ->
    let re = compile_expr st 0 expected in
    let rd = compile_expr st 1 desired in
    let base, off, flagged = compile_address st 2 lv in
    Asm.emit st.asm
      (Instr.Cas { dst = local_reg st dst; base; off; expected = re; desired = rd; flagged })
  | Ast.Return e ->
    (match st.regions with
    | [] -> err "Return outside an inlined region"
    | region :: _ ->
      (match (e, region.result) with
      | Some e, Some result ->
        let src = compile_expr st 0 e in
        move st ~dst:(local_reg st result) ~src
      | Some e, None ->
        (* Value discarded by a Call_stmt on a returning method. *)
        ignore (compile_expr st 0 e)
      | None, _ -> ());
      Asm.jump st.asm region.exit_label)
  | Ast.Inlined { cid; result; body } ->
    let exit_label = Asm.fresh_label st.asm in
    (match cid with Some cid -> Asm.emit st.asm (Instr.Fs_start cid) | None -> ());
    st.regions <- { exit_label; result } :: st.regions;
    compile_block st body;
    st.regions <- List.tl st.regions;
    Asm.place st.asm exit_label;
    (match cid with Some cid -> Asm.emit st.asm (Instr.Fs_end cid) | None -> ())
  | Ast.Call_stmt _ | Ast.Call_assign _ -> err "codegen: calls must be inlined first"

let compile_thread ~layout ~flagged block =
  let st = create_state ~layout ~flagged in
  compile_block st block;
  Asm.emit st.asm Instr.Halt;
  Asm.finish st.asm
