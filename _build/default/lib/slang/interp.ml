module Layout = Fscope_isa.Layout
module String_map = Map.Make (String)

exception Stuck of string

exception Returned of int option
(* internal: unwinds a method body on Return *)

let stuck fmt = Printf.ksprintf (fun s -> raise (Stuck s)) fmt

type state = {
  program : Ast.program;
  layout : Layout.t;
  mem : int array;
  mutable fuel : int;
  tid : int;
}

let class_of st name =
  match List.find_opt (fun (c : Ast.class_decl) -> c.cname = name) st.program.Ast.classes with
  | Some c -> c
  | None -> stuck "unknown class %s" name

let instance_class st ~self name =
  let name = if name = "self" then Option.get self else name in
  let inst =
    match
      List.find_opt (fun (i : Ast.instance_decl) -> i.iname = name) st.program.Ast.instances
    with
    | Some i -> i
    | None -> stuck "unknown instance %s" name
  in
  (name, class_of st inst.cls)

let addr_of st name =
  match Layout.address_of st.layout name with
  | a -> a
  | exception Not_found -> stuck "unknown symbol %s" name

let burn st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise (Stuck "out of fuel")

let read_word st addr =
  if addr < 0 || addr >= Array.length st.mem then stuck "load out of bounds: %d" addr;
  st.mem.(addr)

let write_word st addr v =
  if addr < 0 || addr >= Array.length st.mem then stuck "store out of bounds: %d" addr;
  st.mem.(addr) <- v

let eval_binop op a b =
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Mul -> a * b
  | Ast.Div -> if b = 0 then 0 else a / b
  | Ast.Rem -> if b = 0 then 0 else a mod b
  | Ast.Band -> a land b
  | Ast.Bor -> a lor b
  | Ast.Bxor -> a lxor b
  | Ast.Shl -> a lsl (b land 63)
  | Ast.Shr -> a asr (b land 63)
  | Ast.Lt -> if a < b then 1 else 0
  | Ast.Le -> if a <= b then 1 else 0
  | Ast.Gt -> if a > b then 1 else 0
  | Ast.Ge -> if a >= b then 1 else 0
  | Ast.Eq -> if a = b then 1 else 0
  | Ast.Ne -> if a <> b then 1 else 0

(* Locals live in a mutable binding map per activation. *)
type frame = { mutable locals : int String_map.t }

let get_local frame name =
  match String_map.find_opt name frame.locals with
  | Some v -> v
  | None -> stuck "unbound local %s" name

let rec lvalue_addr st ~self frame = function
  | Ast.Global name -> addr_of st name
  | Ast.Elem (name, idx) -> addr_of st name + eval st ~self frame idx
  | Ast.Field (instance, field) ->
    let instance = if instance = "self" then Option.get self else instance in
    addr_of st (Ast.field_symbol instance field)
  | Ast.Field_elem (instance, field, idx) ->
    let instance = if instance = "self" then Option.get self else instance in
    addr_of st (Ast.field_symbol instance field) + eval st ~self frame idx

and eval st ~self frame = function
  | Ast.Int v -> v
  | Ast.Tid -> st.tid
  | Ast.Local name -> get_local frame name
  | Ast.Read lv -> read_word st (lvalue_addr st ~self frame lv)
  | Ast.Binop (op, a, b) -> eval_binop op (eval st ~self frame a) (eval st ~self frame b)
  | Ast.Not e -> if eval st ~self frame e = 0 then 1 else 0

and exec_call st ~self frame (call : Ast.call) =
  let instance_name, cls =
    instance_class st ~self (Option.value ~default:"self" call.Ast.instance)
  in
  let meth =
    match List.find_opt (fun (m : Ast.meth) -> m.mname = call.Ast.meth) cls.Ast.methods with
    | Some m -> m
    | None -> stuck "class %s has no method %s" cls.Ast.cname call.Ast.meth
  in
  let args = List.map (eval st ~self frame) call.Ast.args in
  let callee_frame =
    { locals = List.fold_left2 (fun m p v -> String_map.add p v m) String_map.empty meth.params args }
  in
  match exec_block st ~self:(Some instance_name) callee_frame meth.body with
  | () -> None
  | exception Returned v -> v

and exec_block st ~self frame block = List.iter (exec_stmt st ~self frame) block

and exec_stmt st ~self frame stmt =
  burn st;
  match stmt with
  | Ast.Let (name, e) | Ast.Assign (name, e) ->
    frame.locals <- String_map.add name (eval st ~self frame e) frame.locals
  | Ast.Store (lv, e) ->
    let v = eval st ~self frame e in
    write_word st (lvalue_addr st ~self frame lv) v
  | Ast.If (cond, then_b, else_b) ->
    if eval st ~self frame cond <> 0 then exec_block st ~self frame then_b
    else exec_block st ~self frame else_b
  | Ast.While (cond, body) ->
    while eval st ~self frame cond <> 0 do
      burn st;
      exec_block st ~self frame body
    done
  | Ast.Fence _ -> ()
  | Ast.Cas { dst; lv; expected; desired } ->
    let addr = lvalue_addr st ~self frame lv in
    let expected = eval st ~self frame expected in
    let desired = eval st ~self frame desired in
    let old = read_word st addr in
    let ok = old = expected in
    if ok then write_word st addr desired;
    frame.locals <- String_map.add dst (if ok then 1 else 0) frame.locals
  | Ast.Call_stmt call -> ignore (exec_call st ~self frame call)
  | Ast.Call_assign (dst, call) -> (
    match exec_call st ~self frame call with
    | Some v -> frame.locals <- String_map.add dst v frame.locals
    | None -> stuck "method %s returned no value" call.Ast.meth)
  | Ast.Return e -> raise (Returned (Option.map (eval st ~self frame) e))
  | Ast.Inlined _ -> stuck "interpreter runs source programs, not inlined ones"

let run_sequential ?(fuel = 1_000_000) (p : Ast.program) ~layout =
  let mem = Array.make (Layout.size layout) 0 in
  List.iter (fun (addr, v) -> mem.(addr) <- v) (Layout.initials layout);
  let shared_fuel = ref fuel in
  List.iteri
    (fun tid thread ->
      let st = { program = p; layout; mem; fuel = !shared_fuel; tid } in
      let frame = { locals = String_map.empty } in
      (try exec_block st ~self:None frame thread with
      | Returned _ -> stuck "Return escaped a thread body");
      shared_fuel := st.fuel)
    p.Ast.threads;
  mem
