(** The mini object-oriented language ("slang") the workloads are
    written in.

    It exists to express the paper's programming model: classes whose
    methods contain customizable fence statements (Fig. 4), method
    calls that delimit class scopes, and globals shared between
    threads.  The compiler ({!Compile}) inlines all calls, wraps
    public method bodies of classes containing class-scoped fences in
    [fs_start]/[fs_end], flags set-scope accesses, and emits the
    simulator's ISA.

    Restrictions (checked by {!Typecheck}): no recursion, calls only
    in statement position, integers are the only type, arrays are
    1-dimensional with static size. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band  (** bitwise and *)
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type lvalue =
  | Global of string  (** scalar global *)
  | Elem of string * expr  (** global array element *)
  | Field of string * string  (** [Field (instance, field)]: scalar field *)
  | Field_elem of string * string * expr  (** instance array field element *)

and expr =
  | Int of int
  | Tid  (** the hardware thread id of the executing core *)
  | Local of string
  | Read of lvalue
  | Binop of binop * expr * expr
  | Not of expr  (** logical not: 1 if the operand is 0, else 0 *)

type fence_spec =
  | F_full  (** S-FENCE — traditional, global scope *)
  | F_class  (** S-FENCE[class] *)
  | F_set of string list  (** S-FENCE[set, {v1, v2, ...}]; names of globals/fields ("inst.f") *)

(** Directional flavour, orthogonal to scope (cf. sfence/lfence;
    the paper's §VII notes scope "can be combined with the various
    finer fences"). *)
type fence_flavor =
  | FF_full
  | FF_store_store
  | FF_load_load
  | FF_store_load

type call = {
  instance : string option;  (** None = call to a free method is not supported; always Some *)
  meth : string;
  args : expr list;
}

type stmt =
  | Let of string * expr  (** declare a local *)
  | Assign of string * expr  (** assign an existing local *)
  | Store of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | Fence of fence_spec * fence_flavor
  | Cas of { dst : string; lv : lvalue; expected : expr; desired : expr }
      (** dst (an existing local) := 1 if the CAS succeeded *)
  | Call_stmt of call  (** call for effect *)
  | Call_assign of string * call  (** existing local := call's return value *)
  | Return of expr option  (** only inside methods *)
  | Inlined of inlined  (** produced by {!Inline}; not written by hand *)

and inlined = {
  cid : int option;  (** class id when the class has class-scoped fences *)
  result : string option;  (** local receiving the return value *)
  body : block;
}

and block = stmt list

type meth = {
  mname : string;
  params : string list;
  returns : bool;
  body : block;
}

type class_decl = {
  cname : string;
  scalars : (string * int) list;  (** field name, initial value *)
  arrays : (string * int * int array option) list;  (** name, size, initial contents *)
  methods : meth list;
}

type instance_decl = {
  iname : string;
  cls : string;
}

type global_decl =
  | G_scalar of string * int  (** name, initial value *)
  | G_array of string * int * int array option

type program = {
  classes : class_decl list;
  instances : instance_decl list;
  globals : global_decl list;
  threads : block list;  (** one block per hardware thread *)
}

val field_symbol : string -> string -> string
(** [field_symbol instance field] is the data-segment symbol naming an
    instance field: ["instance.field"]. *)

val iter_lvalues_expr : (lvalue -> unit) -> expr -> unit
(** Visit every lvalue read in an expression (recursively, including
    index expressions). *)

val iter_stmt_deep : (stmt -> unit) -> block -> unit
(** Visit every statement, descending into [If]/[While]/[Inlined]. *)
