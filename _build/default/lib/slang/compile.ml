module Layout = Fscope_isa.Layout
module Program = Fscope_isa.Program

type info = {
  cids : (string * int) list;
  flagged_symbols : string list;
  layout : Layout.t;
}

let build_layout (p : Ast.program) =
  let layout = Layout.create ~line_words:8 () in
  List.iter
    (function
      | Ast.G_scalar (name, init) ->
        let addr = Layout.alloc_aligned layout name 1 in
        if init <> 0 then Layout.init layout addr init
      | Ast.G_array (name, size, init) ->
        let addr = Layout.alloc_aligned layout name size in
        (match init with
        | Some values -> Layout.init_array layout addr values
        | None -> ()))
    p.Ast.globals;
  List.iter
    (fun (inst : Ast.instance_decl) ->
      let cls = List.find (fun (c : Ast.class_decl) -> c.cname = inst.cls) p.Ast.classes in
      List.iter
        (fun (field, init) ->
          let sym = Ast.field_symbol inst.iname field in
          let addr = Layout.alloc_aligned layout sym 1 in
          if init <> 0 then Layout.init layout addr init)
        cls.scalars;
      List.iter
        (fun (field, size, init) ->
          let sym = Ast.field_symbol inst.iname field in
          let addr = Layout.alloc_aligned layout sym size in
          match init with
          | Some values -> Layout.init_array layout addr values
          | None -> ())
        cls.arrays)
    p.Ast.instances;
  layout

let compile ?(extra_mem = 0) (p : Ast.program) =
  Typecheck.check p;
  let layout = build_layout p in
  let flagged_symbols = Alias.set_variables p in
  let flagged sym = List.mem sym flagged_symbols in
  let inlined, cids = Inline.run p in
  let threads =
    List.map (fun thread -> Codegen.compile_thread ~layout ~flagged thread) inlined.Ast.threads
  in
  let program =
    Program.make ~threads
      ~mem_words:(Layout.size layout + extra_mem)
      ~init:(Layout.initials layout) ~symbols:(Layout.symbols layout) ()
  in
  (program, { cids; flagged_symbols; layout })

let compile_program ?extra_mem p = fst (compile ?extra_mem p)
