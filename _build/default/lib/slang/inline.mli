(** Method-call inlining.

    The compiler inlines every call (the language forbids recursion,
    so this terminates).  A call to a method of a class that contains
    class-scoped fences becomes an {!Ast.Inlined} region tagged with
    the class's [cid]; code generation brackets such regions with
    [fs_start cid] / [fs_end cid] — the paper's compiler support for
    class scope (§IV-A.1).  Calls to classes without class fences
    still become (untagged) regions so that [Return] compiles to a
    jump to the region's end.

    Argument expressions are evaluated at the top of the inlined
    region (i.e. inside the callee's scope).  This is harmless for
    scoping: it can only make fences stricter, and in the shipped
    workloads arguments are locals or constants. *)

val run : Ast.program -> Ast.program * (string * int) list
(** [run p] returns the program with every thread fully inlined, plus
    the class-name -> cid table (only classes containing class-scoped
    fences are listed).  [p] must already have passed {!Typecheck}. *)
