(** A reference interpreter for slang.

    Executes the *source* AST directly — method calls are evaluated by
    recursion (no inlining), fences are no-ops, CAS is an atomic
    read-modify-write — against the same data layout the compiler
    produces.  Threads run to completion one after another, so for
    single-threaded programs (or programs whose threads touch disjoint
    data) the final memory must equal what the cycle-level simulator
    computes, whatever the pipeline does.

    This gives the test suite a differential oracle spanning the
    typechecker, the inliner, register allocation, code generation and
    the processor model: random programs are run both ways and the
    memories compared (see test/test_differential.ml). *)

exception Stuck of string
(** Raised on a runtime error (call to a missing method, unbounded
    loop exceeding the fuel, out-of-bounds array index). *)

val run_sequential : ?fuel:int -> Ast.program -> layout:Fscope_isa.Layout.t -> int array
(** [run_sequential p ~layout] interprets every thread in order and
    returns the final memory image (of [Layout.size layout] words).
    [fuel] bounds the total statement count (default 1_000_000).
    The program must be well typed. *)
