module Core = Fscope_cpu.Core
module Hierarchy = Fscope_mem.Hierarchy
module Program = Fscope_isa.Program

type result = {
  cycles : int;
  timed_out : bool;
  core_stats : Core.stats array;
  mem : int array;
  cache : Hierarchy.stats;
}

let run (config : Config.t) program =
  let cores_n = Program.thread_count program in
  let mem = Program.initial_memory program in
  let hierarchy = Hierarchy.create ~cores:cores_n config.mem in
  let cores =
    Array.init cores_n (fun id ->
        Core.create ~id ~code:program.Program.threads.(id) ~mem ~hierarchy
          ~scope_config:config.scope ~exec_config:config.exec)
  in
  let all_done () = Array.for_all Core.drained cores in
  let cycle = ref 0 in
  while (not (all_done ())) && !cycle < config.max_cycles do
    let c = !cycle in
    Array.iter (fun core -> Core.step_complete_writes core ~cycle:c) cores;
    Array.iter (fun core -> Core.step_complete_reads core ~cycle:c) cores;
    Array.iter (fun core -> Core.step_pipeline core ~cycle:c) cores;
    incr cycle
  done;
  {
    cycles = !cycle;
    timed_out = not (all_done ());
    core_stats = Array.map Core.stats cores;
    mem;
    cache = Hierarchy.stats hierarchy;
  }

let fence_stall_cycles r =
  Array.fold_left (fun acc (s : Core.stats) -> acc + s.fence_stall_cycles) 0 r.core_stats

let total_active_cycles r =
  Array.fold_left (fun acc (s : Core.stats) -> acc + s.active_cycles) 0 r.core_stats

let fence_stall_fraction r =
  Fscope_util.Stats.ratio ~num:(fence_stall_cycles r) ~den:(total_active_cycles r)

let committed_instrs r =
  Array.fold_left (fun acc (s : Core.stats) -> acc + s.committed) 0 r.core_stats

let avg_rob_occupancy r =
  let sum =
    Array.fold_left (fun acc (s : Core.stats) -> acc + s.rob_occupancy_sum) 0 r.core_stats
  in
  Fscope_util.Stats.ratio ~num:sum ~den:(total_active_cycles r)
