lib/machine/machine.ml: Array Config Fscope_cpu Fscope_isa Fscope_mem Fscope_util
