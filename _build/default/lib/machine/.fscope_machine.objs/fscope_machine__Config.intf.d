lib/machine/config.mli: Fscope_core Fscope_cpu Fscope_mem
