lib/machine/machine.mli: Config Fscope_cpu Fscope_isa Fscope_mem
