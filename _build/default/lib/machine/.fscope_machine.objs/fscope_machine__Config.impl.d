lib/machine/config.ml: Fscope_core Fscope_cpu Fscope_mem
