lib/cpu/exec_config.ml:
