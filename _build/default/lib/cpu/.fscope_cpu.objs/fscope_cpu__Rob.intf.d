lib/cpu/rob.mli: Fscope_core Fscope_isa
