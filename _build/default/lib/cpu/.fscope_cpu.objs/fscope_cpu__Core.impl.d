lib/cpu/core.ml: Array Branch_pred Exec_config Fscope_core Fscope_isa Fscope_mem List Printf Rob Store_buffer
