lib/cpu/store_buffer.ml: Fscope_core List
