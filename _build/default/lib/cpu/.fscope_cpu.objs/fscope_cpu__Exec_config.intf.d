lib/cpu/exec_config.mli:
