lib/cpu/rob.ml: Array Fscope_core Fscope_isa
