lib/cpu/store_buffer.mli: Fscope_core
