lib/cpu/branch_pred.ml: Array
