lib/cpu/core.mli: Exec_config Fscope_core Fscope_isa Fscope_mem
